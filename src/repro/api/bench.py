"""Throughput benchmark harness: the repository's performance trajectory.

The paper's headline is simulation *speed* ("tens to hundreds of KIPS"), so
the repository tracks its own: :func:`run_throughput_suite` times every
registered timing model on a fixed seeded workload and reports simulated
KIPS (thousand simulated instructions per host second) together with the
model-level quantity that explains it, miss events per instruction — the
interval-at-a-time kernel pays real work only at events.

The suite powers three front ends:

* ``repro bench`` (and ``benchmarks/run_bench.py``) writes the JSON report —
  by convention ``BENCH_throughput.json`` at the repository root — so the
  perf trajectory is versioned alongside the code;
* ``--baseline`` compares the measured interval throughput against a
  checked-in floor and fails the run on a regression, which is what the CI
  benchmark job enforces;
* ``benchmarks/test_simulator_throughput.py`` measures the same shape under
  pytest-benchmark.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from typing import Dict, List, Mapping, Optional, Sequence, Union

from ..common.config import default_machine_config
from ..common.stats import Stopwatch
from ..trace.workloads import single_threaded_workload
from .registry import DEFAULT_REGISTRY, SimulatorRegistry

__all__ = [
    "DEFAULT_BENCH_FILENAME",
    "run_throughput_suite",
    "check_baseline",
    "write_report",
    "render_report",
    "add_bench_arguments",
    "run_bench_command",
]

#: Conventional report path (relative to the invoking directory, which for
#: repository workflows is the repository root).
DEFAULT_BENCH_FILENAME = "BENCH_throughput.json"

#: Report schema version, bumped on incompatible change.
BENCH_FORMAT_VERSION = 1


def run_throughput_suite(
    benchmark: str = "gcc",
    instructions: int = 20_000,
    warmup_instructions: Optional[int] = None,
    simulators: Sequence[str] = ("interval", "detailed", "oneipc"),
    repeats: int = 3,
    seed: int = 0,
    registry: Optional[SimulatorRegistry] = None,
) -> Dict[str, object]:
    """Time every requested simulator on one seeded workload.

    Each simulator runs ``repeats`` times on the *same* workload object (the
    columnar batch is pre-built so every round measures steady state) and the
    fastest round is reported, which filters scheduler noise the way
    pytest-benchmark's ``min`` column does.  Returns the JSON-safe report.
    """
    if instructions <= 0:
        raise ValueError("instructions must be positive")
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    active_registry = registry if registry is not None else DEFAULT_REGISTRY
    warmup = (
        warmup_instructions if warmup_instructions is not None else instructions // 2
    )
    workload = single_threaded_workload(benchmark, instructions=instructions, seed=seed)
    for trace in workload.traces:
        trace.batch()  # steady state: the batch is per-trace, built once
    machine = default_machine_config(num_cores=1)

    results: Dict[str, Dict[str, object]] = {}
    for name in simulators:
        entry = active_registry.get(name)  # fail early on unknown names
        best_wall: Optional[float] = None
        stats = None
        for _ in range(repeats):
            simulator = active_registry.create(name, machine)
            stopwatch = Stopwatch()
            stopwatch.start()
            round_stats = simulator.run(workload, warmup_instructions=warmup)
            wall = stopwatch.stop()
            if best_wall is None or wall < best_wall:
                best_wall = wall
                stats = round_stats
        assert stats is not None and best_wall is not None
        timed_instructions = stats.total_instructions
        results[name] = {
            "description": entry.description,
            "best_wall_seconds": best_wall,
            # Whole-run throughput: warm-up + timed instructions over the
            # fastest wall time (the figure the 3x acceptance bar uses).
            "whole_run_kips": instructions / best_wall / 1000.0 if best_wall else 0.0,
            # Timed-region throughput, comparable to the paper's KIPS quotes:
            # the simulator's own stopwatch starts after functional warm-up,
            # so this is timed instructions over timed wall time.
            "simulated_kips": stats.simulated_kips(),
            "timed_instructions": timed_instructions,
            "total_miss_events": stats.total_miss_events,
            "events_per_instruction": stats.events_per_instruction,
            "aggregate_ipc": stats.aggregate_ipc,
        }

    speedups: Dict[str, float] = {}
    reference = results.get("detailed")
    if reference and reference["best_wall_seconds"]:
        for name, row in results.items():
            if name == "detailed" or not row["best_wall_seconds"]:
                continue
            speedups[name] = (
                float(reference["best_wall_seconds"]) / float(row["best_wall_seconds"])
            )

    return {
        "format_version": BENCH_FORMAT_VERSION,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "workload": {
            "benchmark": benchmark,
            "instructions": instructions,
            "warmup_instructions": warmup,
            "seed": seed,
        },
        "repeats": repeats,
        "results": results,
        "speedup_vs_detailed": speedups,
    }


def check_baseline(
    report: Mapping[str, object],
    baseline: Mapping[str, object],
    tolerance: float = 0.2,
) -> List[str]:
    """Compare a report against a checked-in throughput floor.

    ``baseline`` maps ``"<simulator>_kips"`` keys (e.g. ``interval_kips``) to
    minimum acceptable whole-run KIPS; a measured value below
    ``floor * (1 - tolerance)`` is a regression.  Returns the list of failure
    messages (empty when everything passes).  Baselines are deliberately
    coarse — CI machines vary — so the gate catches order-of-magnitude
    kernel regressions, not scheduler noise.
    """
    failures: List[str] = []
    results = report.get("results", {})
    assert isinstance(results, Mapping)
    for key, floor in baseline.items():
        if not isinstance(key, str) or not key.endswith("_kips"):
            continue
        simulator = key[: -len("_kips")]
        row = results.get(simulator)
        if row is None:
            failures.append(f"baseline names {simulator!r} but it was not measured")
            continue
        measured = float(row["whole_run_kips"])  # type: ignore[index,call-overload]
        threshold = float(floor) * (1.0 - tolerance)  # type: ignore[arg-type]
        if measured < threshold:
            failures.append(
                f"{simulator}: {measured:.1f} KIPS is below the baseline floor "
                f"{float(floor):.1f} KIPS - {tolerance:.0%} = {threshold:.1f} KIPS"  # type: ignore[arg-type]
            )
    return failures


def write_report(
    report: Mapping[str, object], path: Union[str, os.PathLike]
) -> None:
    """Write a throughput report as an indented JSON document."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_report(report: Mapping[str, object]) -> str:
    """Human-readable table for a throughput report."""
    from ..experiments.runner import render_table

    workload = report.get("workload", {})
    assert isinstance(workload, Mapping)
    rows = []
    results = report.get("results", {})
    assert isinstance(results, Mapping)
    speedups = report.get("speedup_vs_detailed", {})
    assert isinstance(speedups, Mapping)
    for name, row in results.items():
        rows.append(
            (
                name,
                float(row["whole_run_kips"]),
                float(row["simulated_kips"]),
                float(row["events_per_instruction"]),
                float(row["aggregate_ipc"]),
                float(row["best_wall_seconds"]) * 1000.0,
                float(speedups.get(name, 1.0)) if name != "detailed" else 1.0,
            )
        )
    return render_table(
        [
            "simulator",
            "whole-run KIPS",
            "timed KIPS",
            "events/instr",
            "IPC",
            "best ms",
            "speedup vs detailed",
        ],
        rows,
        title=(
            f"Simulator throughput on {workload.get('benchmark')} "
            f"({workload.get('instructions')} instructions, "
            f"{workload.get('warmup_instructions')} warm-up)"
        ),
    )


# -- CLI plumbing shared by `repro bench` and benchmarks/run_bench.py ------------


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the benchmark flags to an argparse parser."""
    parser.add_argument("--benchmark", default="gcc", help="benchmark name")
    parser.add_argument(
        "--instructions", type=int, default=20_000, help="instructions to simulate"
    )
    parser.add_argument(
        "--warmup", type=int, default=None, help="warm-up instructions (default: half)"
    )
    parser.add_argument(
        "--simulators",
        default="interval,detailed,oneipc",
        help="comma-separated registry names",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing rounds per simulator (best wins)"
    )
    parser.add_argument("--seed", type=int, default=0, help="trace-generation seed")
    parser.add_argument(
        "-o",
        "--output",
        default=DEFAULT_BENCH_FILENAME,
        help=f"report path (default: ./{DEFAULT_BENCH_FILENAME})",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="checked-in baseline JSON; exit non-zero when interval throughput "
        "regresses beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fraction below the baseline floor (default: 0.2)",
    )


def run_bench_command(args: argparse.Namespace) -> int:
    """Execute the benchmark suite described by parsed CLI flags."""
    simulators = [name.strip() for name in args.simulators.split(",") if name.strip()]
    if not simulators:
        raise SystemExit("error: --simulators needs at least one name")
    report = run_throughput_suite(
        benchmark=args.benchmark,
        instructions=args.instructions,
        warmup_instructions=args.warmup,
        simulators=simulators,
        repeats=args.repeats,
        seed=args.seed,
    )
    print(render_report(report))
    if args.output:
        write_report(report, args.output)
        print(f"report written to {args.output}")
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = check_baseline(report, baseline, tolerance=args.tolerance)
        if failures:
            for failure in failures:
                print(f"BASELINE REGRESSION: {failure}")
            return 1
        print(f"baseline check passed ({args.baseline}, tolerance {args.tolerance:.0%})")
    return 0
