"""Simulator registry: resolve timing models by name.

Every timing model in the package (and any future one) is registered under a
short name ("interval", "detailed", "oneipc") together with a schema of the
keyword options its constructor accepts beyond the machine configuration.
The registry is the single place the rest of the repository — the
:class:`~repro.api.session.Session` builder, the experiment harness and the
``python -m repro`` CLI — looks simulators up, so adding a model is one
``@register_simulator(...)`` decoration away from being sweepable and
CLI-visible.

Typical use::

    from repro.api import create_simulator, list_simulators

    print([entry.name for entry in list_simulators()])
    simulator = create_simulator("interval", machine, use_old_window=False)
    stats = simulator.run(workload)

Registering a new model::

    @register_simulator(
        "mymodel",
        description="my experimental timing model",
        options=[SimulatorOption("knob", int, 4, "some knob")],
    )
    class MySimulator(MulticoreSimulator):
        ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..common.config import MachineConfig

__all__ = [
    "SimulatorOption",
    "RegisteredSimulator",
    "SimulatorRegistry",
    "UnknownSimulatorError",
    "DuplicateSimulatorError",
    "InvalidOptionError",
    "register_simulator",
    "create_simulator",
    "get_simulator",
    "list_simulators",
    "simulator_names",
    "DEFAULT_REGISTRY",
]


class UnknownSimulatorError(KeyError):
    """Raised when a simulator name is not in the registry."""

    def __init__(self, name: str, known: Sequence[str]) -> None:
        super().__init__(name)
        self.name = name
        self.known = list(known)

    def __str__(self) -> str:
        return f"unknown simulator {self.name!r}; registered: {sorted(self.known)}"


class DuplicateSimulatorError(ValueError):
    """Raised when a name is registered twice without ``replace=True``."""


class InvalidOptionError(ValueError):
    """Raised when simulator options do not match the registered schema."""


@dataclass(frozen=True)
class SimulatorOption:
    """One keyword option a simulator accepts beyond the machine config.

    Attributes
    ----------
    name:
        Keyword-argument name on the simulator constructor.
    type:
        Python type of the option (used for CLI string coercion).
    default:
        Value used when the option is not given.
    help:
        One-line description shown by ``python -m repro list-simulators``.
    """

    name: str
    type: type = bool
    default: object = None
    help: str = ""

    def coerce(self, value: object) -> object:
        """Coerce ``value`` (possibly a CLI string) to the option's type."""
        if isinstance(value, self.type):
            return value
        if self.type is bool:
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("1", "true", "yes", "on"):
                    return True
                if lowered in ("0", "false", "no", "off"):
                    return False
            raise InvalidOptionError(
                f"option {self.name!r} expects a boolean, got {value!r}"
            )
        try:
            return self.type(value)  # type: ignore[call-arg]
        except (TypeError, ValueError) as exc:
            raise InvalidOptionError(
                f"option {self.name!r} expects {self.type.__name__}, got {value!r}"
            ) from exc


@dataclass(frozen=True)
class RegisteredSimulator:
    """A registry entry: factory plus option schema."""

    name: str
    factory: Callable[..., object]
    options: Tuple[SimulatorOption, ...] = ()
    description: str = ""

    def option(self, name: str) -> SimulatorOption:
        """Look up one option of this simulator's schema."""
        for opt in self.options:
            if opt.name == name:
                return opt
        raise InvalidOptionError(
            f"simulator {self.name!r} has no option {name!r}; "
            f"known options: {[o.name for o in self.options]}"
        )

    def validate_options(self, options: Dict[str, object]) -> Dict[str, object]:
        """Check ``options`` against the schema, coercing value types."""
        return {name: self.option(name).coerce(value) for name, value in options.items()}


class SimulatorRegistry:
    """A name → simulator-factory mapping with per-model option schemas."""

    def __init__(self) -> None:
        self._entries: Dict[str, RegisteredSimulator] = {}

    # -- registration ------------------------------------------------------------

    def register(
        self,
        name: str,
        factory: Optional[Callable[..., object]] = None,
        *,
        options: Iterable[SimulatorOption] = (),
        description: str = "",
        replace: bool = False,
    ):
        """Register ``factory`` under ``name``; usable as a decorator.

        With ``factory`` omitted, returns a class decorator::

            @registry.register("interval", options=[...])
            class IntervalSimulator(MulticoreSimulator): ...
        """

        def _register(target: Callable[..., object]) -> Callable[..., object]:
            if name in self._entries and not replace:
                raise DuplicateSimulatorError(
                    f"simulator {name!r} is already registered "
                    f"(pass replace=True to override)"
                )
            summary = description
            if not summary:
                doc = (target.__doc__ or "").strip()
                summary = doc.splitlines()[0] if doc else ""
            self._entries[name] = RegisteredSimulator(
                name=name,
                factory=target,
                options=tuple(options),
                description=summary,
            )
            return target

        if factory is not None:
            return _register(factory)
        return _register

    def unregister(self, name: str) -> None:
        """Remove one entry (mainly for tests)."""
        self._entries.pop(name, None)

    # -- lookup ------------------------------------------------------------------

    def get(self, name: str) -> RegisteredSimulator:
        """Return the entry for ``name`` or raise :class:`UnknownSimulatorError`."""
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownSimulatorError(name, list(self._entries)) from None

    def create(self, name: str, machine: MachineConfig, **options: object):
        """Instantiate the simulator registered under ``name``.

        Options are validated (and coerced) against the registered schema, so
        a typo'd keyword fails with the list of valid options instead of a
        ``TypeError`` deep inside a constructor.
        """
        entry = self.get(name)
        validated = entry.validate_options(dict(options))
        return entry.factory(machine, **validated)

    def names(self) -> List[str]:
        """Sorted names of all registered simulators."""
        return sorted(self._entries)

    def entries(self) -> List[RegisteredSimulator]:
        """All registry entries, sorted by name."""
        return [self._entries[name] for name in self.names()]

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)


#: The process-wide registry used by the Session API, experiments and CLI.
DEFAULT_REGISTRY = SimulatorRegistry()


def register_simulator(
    name: str,
    *,
    options: Iterable[SimulatorOption] = (),
    description: str = "",
    replace: bool = False,
    registry: Optional[SimulatorRegistry] = None,
):
    """Class decorator registering a simulator in ``registry`` (default: global)."""
    target_registry = registry if registry is not None else DEFAULT_REGISTRY
    return target_registry.register(
        name, options=options, description=description, replace=replace
    )


def create_simulator(name: str, machine: MachineConfig, **options: object):
    """Instantiate a simulator by name from the default registry."""
    return DEFAULT_REGISTRY.create(name, machine, **options)


def get_simulator(name: str) -> RegisteredSimulator:
    """Return the default-registry entry for ``name``."""
    return DEFAULT_REGISTRY.get(name)


def list_simulators() -> List[RegisteredSimulator]:
    """All entries of the default registry, sorted by name."""
    return DEFAULT_REGISTRY.entries()


def simulator_names() -> List[str]:
    """Sorted simulator names of the default registry."""
    return DEFAULT_REGISTRY.names()


def _register_builtin_simulators() -> None:
    """Register the three timing models that ship with the package."""
    from ..core.interval_sim import IntervalSimulator
    from ..core.oneipc import OneIPCSimulator
    from ..detailed.detailed_sim import DetailedSimulator

    if "interval" not in DEFAULT_REGISTRY:
        DEFAULT_REGISTRY.register(
            "interval",
            IntervalSimulator,
            description="interval analysis timing model (the paper's contribution)",
            options=(
                SimulatorOption(
                    "use_old_window",
                    bool,
                    True,
                    "estimate dispatch rate / branch resolution from the old window",
                ),
                SimulatorOption(
                    "model_overlap",
                    bool,
                    True,
                    "model miss events overlapped under long-latency loads",
                ),
            ),
        )
    if "detailed" not in DEFAULT_REGISTRY:
        DEFAULT_REGISTRY.register(
            "detailed",
            DetailedSimulator,
            description="cycle-level out-of-order reference simulator",
        )
    if "oneipc" not in DEFAULT_REGISTRY:
        DEFAULT_REGISTRY.register(
            "oneipc",
            OneIPCSimulator,
            description="naive one-IPC baseline (miss penalties added serially)",
        )


_register_builtin_simulators()
