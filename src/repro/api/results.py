"""Serializable run results: persist sweeps to disk and reload them.

A :class:`RunResult` pairs the statistics of one simulation with a JSON-safe
record of the job that produced them.  Results round-trip through JSON
(``as_dict``/``from_dict``, :func:`save_results`/:func:`load_results`), so a
large overnight sweep can be executed once, written to disk, and re-analyzed
or re-rendered without re-simulating.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Union

from ..common.canonical import canonical_dumps
from ..common.stats import SimulationStats

__all__ = ["RunResult", "save_results", "load_results"]

#: Schema version stamped into result files, bumped on incompatible change.
RESULT_FORMAT_VERSION = 1


@dataclass
class RunResult:
    """Statistics of one simulation plus the job description that produced it.

    Attributes
    ----------
    simulator:
        Registry name of the simulator that ran ("interval", "detailed", ...).
    workload:
        Human-readable workload name (benchmark, "gcc x4", ...).
    stats:
        Full statistics of the run.
    parameters:
        JSON-safe job description (see :meth:`repro.api.spec.SweepSpec.describe`).
    label:
        Free-form tag the caller attached to the job.
    """

    simulator: str
    workload: str
    stats: SimulationStats
    parameters: Dict[str, object] = field(default_factory=dict)
    label: str = ""

    @property
    def ipc(self) -> float:
        """Aggregate IPC of the run (shortcut for tables)."""
        return self.stats.aggregate_ipc

    @property
    def total_cycles(self) -> int:
        """Simulated execution time of the run in cycles."""
        return self.stats.total_cycles

    @property
    def simulated_kips(self) -> float:
        """Simulation throughput (thousand simulated instructions per host second)."""
        return self.stats.simulated_kips()

    @property
    def events_per_instruction(self) -> float:
        """Miss events per committed instruction (interval density)."""
        return self.stats.events_per_instruction

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe dictionary of the whole result.

        The ``metrics`` block is derived (recomputed on load, never parsed
        back): it records the run's throughput trajectory — simulated KIPS
        and miss events per instruction — next to the raw statistics.
        """
        return {
            "simulator": self.simulator,
            "workload": self.workload,
            "label": self.label,
            "parameters": dict(self.parameters),
            "metrics": {
                "simulated_kips": self.simulated_kips,
                "events_per_instruction": self.events_per_instruction,
                "aggregate_ipc": self.stats.aggregate_ipc,
                "events_popped": self.stats.driver_stats.get("events_popped", 0),
                "cores_parked": self.stats.driver_stats.get("cores_parked", 0),
                "park_cycles_skipped": self.stats.driver_stats.get(
                    "park_cycles_skipped", 0
                ),
                # Issue-queue traffic (detailed model's event-driven back end;
                # zero for the scan reference and the kernel models).
                "issue_wakeups": self.stats.issue_wakeups,
                "issue_scans_skipped": self.stats.issue_scans_skipped,
                "ready_bucket_peak": self.stats.ready_bucket_peak,
                # D-side run-commit traffic (batched same-line memory-op
                # runs; zero when the fast path is ruled out or unused).
                "data_runs_committed": self.stats.data_runs_committed,
                "data_run_aborts": self.stats.data_run_aborts,
                # Fault-injection observability (all zero in fault-free runs).
                "faults_injected": self.stats.faults_injected,
                "refetches_forced": self.stats.refetches_forced,
                "dram_retries": self.stats.dram_retries,
                "retry_cycles": self.stats.retry_cycles,
                "runs_aborted_by_fault": self.stats.runs_aborted_by_fault,
            },
            "stats": self.stats.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunResult":
        """Rebuild a result from :meth:`as_dict` output."""
        return cls(
            simulator=str(data.get("simulator", "")),
            workload=str(data.get("workload", "")),
            stats=SimulationStats.from_dict(dict(data.get("stats", {}))),
            parameters=dict(data.get("parameters", {})),
            label=str(data.get("label", "")),
        )

    def to_json(self, **dumps_kwargs: object) -> str:
        """Serialize this result to a JSON string."""
        return json.dumps(self.as_dict(), **dumps_kwargs)  # type: ignore[arg-type]

    def to_canonical_json(self) -> str:
        """Canonical JSON encoding (sorted keys, compact separators).

        Two processes serializing equal results produce equal strings, which
        is what the content-addressed result store checksums and what makes
        "bit-identical" comparisons between cached and fresh results exact.
        """
        return canonical_dumps(self.as_dict())

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        """Deserialize a result from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


def save_results(
    results: Sequence[RunResult], path: Union[str, os.PathLike]
) -> None:
    """Write a list of results to ``path`` as one JSON document."""
    document = {
        "format_version": RESULT_FORMAT_VERSION,
        "results": [result.as_dict() for result in results],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")


def load_results(path: Union[str, os.PathLike]) -> List[RunResult]:
    """Reload results written by :func:`save_results`."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if isinstance(document, list):  # bare list, be forgiving
        entries: Iterable[Mapping[str, object]] = document
    else:
        version = document.get("format_version")
        if version != RESULT_FORMAT_VERSION:
            raise ValueError(
                f"unsupported result format version {version!r} in {path}"
            )
        entries = document["results"]
    return [RunResult.from_dict(entry) for entry in entries]
