"""Declarative run specifications: what to simulate, reproducibly.

A :class:`SweepSpec` captures one simulation job — which simulator, which
workload, which machine, which budget — as plain picklable data.  Because the
workload is described declaratively (:class:`WorkloadSpec`) rather than as a
materialized trace, a spec can be shipped to a worker process and rebuilt
there bit-identically from its seed, which is what makes
:meth:`repro.api.session.Session.run_batch` deterministic regardless of the
number of workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple, Union

from ..common.canonical import canonical_dumps, content_digest
from ..common.config import (
    MachineConfig,
    default_machine_config,
    machine_from_dict,
    machine_to_dict,
)
from ..faults.plan import FaultPlan
from ..trace.stream import Workload
from ..trace.workloads import (
    heterogeneous_multiprogram_workload,
    homogeneous_multiprogram_workload,
    multithreaded_workload,
    single_threaded_workload,
)

__all__ = ["WorkloadSpec", "SweepSpec", "WORKLOAD_KINDS", "spec_hash"]

#: Workload shapes a spec can describe, mirroring repro.trace.workloads.
WORKLOAD_KINDS = ("single", "multiprogram", "heterogeneous", "multithreaded")


@dataclass(frozen=True)
class WorkloadSpec:
    """A reproducible description of one workload.

    Attributes
    ----------
    kind:
        One of :data:`WORKLOAD_KINDS`.
    benchmark:
        Benchmark name ("single", "multiprogram", "multithreaded" kinds).
    benchmarks:
        Per-core benchmark names ("heterogeneous" kind).
    copies:
        Copy count for "multiprogram" / thread count for "multithreaded".
    instructions:
        Dynamic instruction budget (``None`` = profile default): per program
        copy for "single"/"multiprogram"/"heterogeneous", but the *total*
        across all threads for "multithreaded" (matching
        :func:`repro.trace.workloads.multithreaded_workload`).
    seed:
        Trace-generation seed; together with the other fields it makes
        :meth:`build` deterministic.
    """

    kind: str = "single"
    benchmark: Optional[str] = None
    benchmarks: Tuple[str, ...] = ()
    copies: int = 1
    instructions: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; known: {WORKLOAD_KINDS}"
            )
        if self.kind == "heterogeneous":
            if not self.benchmarks:
                raise ValueError("heterogeneous workloads need 'benchmarks'")
        elif not self.benchmark:
            raise ValueError(f"{self.kind!r} workloads need 'benchmark'")
        if self.copies <= 0:
            raise ValueError("copies must be positive")

    @property
    def num_threads(self) -> int:
        """How many cores this workload occupies."""
        if self.kind == "single":
            return 1
        if self.kind == "heterogeneous":
            return len(self.benchmarks)
        return self.copies

    @property
    def display_name(self) -> str:
        """Human-readable workload name used in tables and labels."""
        if self.kind == "single":
            return str(self.benchmark)
        if self.kind == "heterogeneous":
            return "+".join(self.benchmarks)
        suffix = "t" if self.kind == "multithreaded" else ""
        return f"{self.benchmark} x{self.copies}{suffix}"

    def build(self) -> Workload:
        """Materialize the workload traces (deterministic given the spec)."""
        if self.kind == "single":
            return single_threaded_workload(
                self.benchmark, instructions=self.instructions, seed=self.seed
            )
        if self.kind == "multiprogram":
            return homogeneous_multiprogram_workload(
                self.benchmark,
                copies=self.copies,
                instructions=self.instructions,
                seed=self.seed,
            )
        if self.kind == "heterogeneous":
            return heterogeneous_multiprogram_workload(
                list(self.benchmarks), instructions=self.instructions, seed=self.seed
            )
        return multithreaded_workload(
            self.benchmark,
            num_threads=self.copies,
            total_instructions=self.instructions,
            seed=self.seed,
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe description of this workload."""
        return {
            "kind": self.kind,
            "benchmark": self.benchmark,
            "benchmarks": list(self.benchmarks),
            "copies": self.copies,
            "instructions": self.instructions,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "WorkloadSpec":
        """Rebuild a workload spec from :meth:`as_dict` output."""
        return cls(
            kind=str(data.get("kind", "single")),
            benchmark=data.get("benchmark"),  # type: ignore[arg-type]
            benchmarks=tuple(data.get("benchmarks", ()) or ()),
            copies=int(data.get("copies", 1)),
            instructions=data.get("instructions"),  # type: ignore[arg-type]
            seed=int(data.get("seed", 0)),
        )


@dataclass(frozen=True)
class SweepSpec:
    """One fully-specified simulation job.

    Specs are plain data: picklable (so they cross process boundaries in
    :meth:`~repro.api.session.Session.run_batch`) and self-describing (so a
    batch result can record exactly what produced it).
    """

    simulator: str
    workload: WorkloadSpec
    machine: MachineConfig = field(default_factory=default_machine_config)
    options: Mapping[str, object] = field(default_factory=dict)
    warmup_instructions: int = 0
    max_cycles: Optional[int] = None
    label: str = ""
    #: Optional deterministic fault schedule (see repro.faults).  ``None``
    #: (the default) is OMITTED from to_dict()/describe() so fault-free
    #: specs keep the exact encoding — and content hash — they had before
    #: fault injection existed.
    faults: Optional[FaultPlan] = None

    def with_simulator(self, simulator: str, **options: object) -> "SweepSpec":
        """Copy of this spec targeting a different simulator.

        The name and options are validated against the default registry so a
        typo fails here, at build time, instead of mid-batch inside a worker
        process.
        """
        from .registry import DEFAULT_REGISTRY

        validated = DEFAULT_REGISTRY.get(simulator).validate_options(dict(options))
        return replace(self, simulator=simulator, options=validated)

    def describe(self) -> Dict[str, object]:
        """JSON-safe description of the job (machine summarized, not encoded).

        Option keys are emitted in sorted order so the description — which is
        embedded verbatim in :class:`~repro.api.results.RunResult` parameters
        — serializes identically however the options dict was built.
        """
        result: Dict[str, object] = {
            "simulator": self.simulator,
            "workload": self.workload.as_dict(),
            "options": {key: self.options[key] for key in sorted(self.options)},
            "warmup_instructions": self.warmup_instructions,
            "max_cycles": self.max_cycles,
            "num_cores": self.machine.num_cores,
            "label": self.label,
        }
        if self.faults is not None:
            result["faults"] = self.faults.as_dict()
        return result

    def to_dict(self) -> Dict[str, object]:
        """Full-fidelity JSON-safe encoding of the job, machine included.

        Unlike :meth:`describe` (a human-oriented summary), this round-trips:
        ``SweepSpec.from_dict(spec.to_dict()) == spec``.  It is the wire
        format of the job server and the payload the content hash is computed
        over, so every collection with order-insensitive semantics (option
        names) is emitted in sorted order.
        """
        result: Dict[str, object] = {
            "simulator": self.simulator,
            "workload": self.workload.as_dict(),
            "machine": machine_to_dict(self.machine),
            "options": {key: self.options[key] for key in sorted(self.options)},
            "warmup_instructions": self.warmup_instructions,
            "max_cycles": self.max_cycles,
            "label": self.label,
        }
        if self.faults is not None:
            # Omitted (not null) when unset: fault-free specs must hash
            # byte-identically to their pre-fault-injection encoding.
            result["faults"] = self.faults.as_dict()
        return result

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        machine_data = data.get("machine")
        machine = (
            machine_from_dict(machine_data)  # type: ignore[arg-type]
            if machine_data is not None
            else default_machine_config()
        )
        max_cycles = data.get("max_cycles")
        faults_data = data.get("faults")
        return cls(
            simulator=str(data["simulator"]),
            workload=WorkloadSpec.from_dict(dict(data.get("workload", {}))),  # type: ignore[arg-type]
            machine=machine,
            options=dict(data.get("options", {})),  # type: ignore[arg-type]
            warmup_instructions=int(data.get("warmup_instructions", 0)),  # type: ignore[arg-type]
            max_cycles=int(max_cycles) if max_cycles is not None else None,
            label=str(data.get("label", "")),
            faults=(
                FaultPlan.from_dict(faults_data)  # type: ignore[arg-type]
                if faults_data is not None
                else None
            ),
        )

    def canonical_json(self) -> str:
        """Canonical JSON encoding of :meth:`to_dict` (sorted keys, compact).

        Two processes — or two Python versions — building the same spec
        produce the same string, which makes it usable as a cache key.
        """
        return canonical_dumps(self.to_dict())

    def content_hash(self) -> str:
        """Hex SHA-256 of :meth:`canonical_json` — the spec's cache key.

        Because every run is bit-reproducible from its spec (deterministic
        trace seeding), equal hashes imply bit-identical results: the result
        store can serve cached statistics as *exact*, not approximate.
        """
        return content_digest(self.to_dict())


def spec_hash(spec: Union[SweepSpec, Mapping[str, object]]) -> str:
    """Content hash of a spec given either as an object or a ``to_dict`` dict.

    Dictionaries are normalized through :meth:`SweepSpec.from_dict` /
    :meth:`SweepSpec.to_dict` first, so an equivalent dict built elsewhere
    (different key order, defaults spelled out or omitted) hashes identically
    to the spec object it describes.
    """
    if not isinstance(spec, SweepSpec):
        spec = SweepSpec.from_dict(spec)
    return spec.content_hash()
