"""Figures 9 and 10 — simulation-speed comparison.

The paper measures the wall-clock speedup of interval simulation over
detailed cycle-level simulation: up to 15× for the multi-program SPEC
workloads (Figure 9) and a factor 8–9× for the multi-threaded PARSEC
workloads (Figure 10), for 1–8 core configurations.

This driver measures the same quantity for this reproduction: both
simulators run the identical workload (same traces, same memory hierarchy
and branch predictors) and the wall-clock times of the timed simulation are
compared.  Because both simulators here are pure Python and the detailed
model uses event-skipping optimizations, the measured ratios are smaller
than the paper's C++-vs-C comparison; the *shape* — interval simulation is
consistently faster, and the gap does not collapse as the core count grows —
is the reproduction target (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..common.config import default_machine_config
from ..trace.profiles import parsec_benchmark_names, spec_benchmark_names
from ..trace.workloads import homogeneous_multiprogram_workload, multithreaded_workload
from .runner import ExperimentConfig, render_table, run_simulator

__all__ = [
    "SpeedupPoint",
    "SpeedupResult",
    "run_figure9_spec_speedup",
    "run_figure10_parsec_speedup",
    "DEFAULT_CORE_COUNTS",
]

#: Core counts evaluated in Figures 9 and 10.
DEFAULT_CORE_COUNTS: Sequence[int] = (1, 2, 4, 8)


@dataclass
class SpeedupPoint:
    """Wall-clock comparison for one (benchmark, core count) pair."""

    benchmark: str
    cores: int
    interval_seconds: float
    detailed_seconds: float
    simulated_instructions: int

    @property
    def speedup(self) -> float:
        """Wall-clock speedup of interval over detailed simulation."""
        if self.interval_seconds <= 0:
            return 0.0
        return self.detailed_seconds / self.interval_seconds

    @property
    def interval_kips(self) -> float:
        """Interval-simulation throughput in kilo-instructions per second."""
        if self.interval_seconds <= 0:
            return 0.0
        return self.simulated_instructions / self.interval_seconds / 1000.0

    @property
    def detailed_kips(self) -> float:
        """Detailed-simulation throughput in kilo-instructions per second."""
        if self.detailed_seconds <= 0:
            return 0.0
        return self.simulated_instructions / self.detailed_seconds / 1000.0


@dataclass
class SpeedupResult:
    """All points of one simulation-speed figure."""

    figure: str
    points: List[SpeedupPoint] = field(default_factory=list)

    @property
    def average_speedup(self) -> float:
        """Mean speedup across all points."""
        return sum(p.speedup for p in self.points) / len(self.points)

    def for_cores(self, cores: int) -> List[SpeedupPoint]:
        """Points of one core count."""
        return [p for p in self.points if p.cores == cores]

    def render(self) -> str:
        """Plain-text rendering of the speedup per benchmark and core count."""
        rows = [
            (
                f"{p.benchmark} ({p.cores} cores)",
                p.detailed_seconds,
                p.interval_seconds,
                p.speedup,
                p.interval_kips,
            )
            for p in self.points
        ]
        return render_table(
            ["workload", "detailed s", "interval s", "speedup", "interval KIPS"],
            rows,
            title=f"{self.figure}: average simulation speedup {self.average_speedup:.1f}x",
        )


def run_figure9_spec_speedup(
    config: ExperimentConfig | None = None,
    core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
) -> SpeedupResult:
    """Figure 9: speedup on (multi-programmed) SPEC CPU2000 workloads."""
    config = config or ExperimentConfig()
    result = SpeedupResult(figure="Figure 9 (SPEC CPU2000 simulation speedup)")
    for benchmark in config.select(spec_benchmark_names()):
        for cores in core_counts:
            machine = default_machine_config(num_cores=cores)
            workload = homogeneous_multiprogram_workload(
                benchmark,
                copies=cores,
                instructions=config.instructions,
                seed=config.seed,
            )
            interval_stats = run_simulator("interval", machine, workload, config)
            detailed_stats = run_simulator("detailed", machine, workload, config)
            result.points.append(
                SpeedupPoint(
                    benchmark=benchmark,
                    cores=cores,
                    interval_seconds=interval_stats.wall_clock_seconds,
                    detailed_seconds=detailed_stats.wall_clock_seconds,
                    simulated_instructions=interval_stats.total_instructions,
                )
            )
    return result


def run_figure10_parsec_speedup(
    config: ExperimentConfig | None = None,
    core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
) -> SpeedupResult:
    """Figure 10: speedup on the multi-threaded PARSEC workloads."""
    config = config or ExperimentConfig()
    result = SpeedupResult(figure="Figure 10 (PARSEC simulation speedup)")
    for benchmark in config.select(parsec_benchmark_names()):
        for cores in core_counts:
            machine = default_machine_config(num_cores=cores)
            workload = multithreaded_workload(
                benchmark,
                num_threads=cores,
                total_instructions=config.instructions,
                seed=config.seed,
            )
            interval_stats = run_simulator("interval", machine, workload, config)
            detailed_stats = run_simulator("detailed", machine, workload, config)
            result.points.append(
                SpeedupPoint(
                    benchmark=benchmark,
                    cores=cores,
                    interval_seconds=interval_stats.wall_clock_seconds,
                    detailed_seconds=detailed_stats.wall_clock_seconds,
                    simulated_instructions=interval_stats.total_instructions,
                )
            )
    return result
