"""Figure 6 — multi-program workloads: system throughput and turnaround time.

The paper evaluates homogeneous multi-program workloads (1, 2, 4 and 8 copies
of the same benchmark, one per core, sharing the L2 cache and off-chip
bandwidth) generated from gcc, mcf, twolf, art and swim, and reports two
metrics for each point:

* **STP** (system throughput) — the sum of the programs' normalized progress,
  a system-oriented metric (higher is better);
* **ANTT** (average normalized turnaround time) — the average slowdown each
  program experiences from co-execution, a user-oriented metric (lower is
  better).

Each metric needs both a solo run (the program running alone on a single-core
machine) and the co-scheduled run; this driver performs both with each
simulator and reports the per-configuration STP/ANTT pairs plus the
interval-vs-detailed error.  The paper reports average errors of 3.8% (STP)
and 4.2% (ANTT) with a maximum of 16%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..common.config import default_machine_config
from ..common.metrics import (
    average_normalized_turnaround_time,
    percentage_error,
    system_throughput,
)
from ..common.stats import SimulationStats
from ..trace.profiles import FIGURE6_BENCHMARKS
from ..trace.stream import Workload
from ..trace.workloads import homogeneous_multiprogram_workload
from .runner import ExperimentConfig, render_table, run_simulator

__all__ = ["MultiProgramPoint", "Figure6Result", "run_figure6", "DEFAULT_COPY_COUNTS"]

#: Core counts evaluated in Figure 6.
DEFAULT_COPY_COUNTS: Sequence[int] = (1, 2, 4, 8)


@dataclass
class MultiProgramPoint:
    """One (benchmark, copy-count) point of Figure 6."""

    benchmark: str
    copies: int
    interval_stp: float
    detailed_stp: float
    interval_antt: float
    detailed_antt: float

    @property
    def stp_error_percent(self) -> float:
        """Signed STP error of interval simulation versus detailed."""
        return percentage_error(self.interval_stp, self.detailed_stp)

    @property
    def antt_error_percent(self) -> float:
        """Signed ANTT error of interval simulation versus detailed."""
        return percentage_error(self.interval_antt, self.detailed_antt)


@dataclass
class Figure6Result:
    """All points of the multi-program study."""

    points: List[MultiProgramPoint] = field(default_factory=list)

    @property
    def average_stp_error(self) -> float:
        """Mean absolute STP error across all points."""
        return sum(abs(p.stp_error_percent) for p in self.points) / len(self.points)

    @property
    def average_antt_error(self) -> float:
        """Mean absolute ANTT error across all points."""
        return sum(abs(p.antt_error_percent) for p in self.points) / len(self.points)

    def for_benchmark(self, benchmark: str) -> List[MultiProgramPoint]:
        """Points of one benchmark, ordered by copy count."""
        return sorted(
            (p for p in self.points if p.benchmark == benchmark),
            key=lambda p: p.copies,
        )

    def render(self) -> str:
        """Plain-text rendering of STP and ANTT for every point."""
        rows = [
            (
                f"{p.benchmark} x{p.copies}",
                p.detailed_stp,
                p.interval_stp,
                p.stp_error_percent,
                p.detailed_antt,
                p.interval_antt,
                p.antt_error_percent,
            )
            for p in self.points
        ]
        title = (
            "Figure 6 (multi-program SPEC): "
            f"avg STP error {self.average_stp_error:.1f}%, "
            f"avg ANTT error {self.average_antt_error:.1f}%"
        )
        return render_table(
            ["workload", "det STP", "int STP", "STP err %", "det ANTT", "int ANTT", "ANTT err %"],
            rows,
            title=title,
        )


def _per_program_cycles(stats: SimulationStats, copies: int) -> List[float]:
    """Per-program completion times (cycles) of a co-scheduled run."""
    return [float(stats.cores[core].cycles) for core in range(copies)]


def run_figure6(
    config: ExperimentConfig | None = None,
    copy_counts: Sequence[int] = DEFAULT_COPY_COUNTS,
) -> Figure6Result:
    """Run the Figure-6 multi-program study."""
    config = config or ExperimentConfig()
    result = Figure6Result()
    max_copies = max(copy_counts)
    for benchmark in config.select(FIGURE6_BENCHMARKS):
        # Generate the largest workload once; smaller copy counts reuse its
        # leading traces, and the solo (run-alone) reference of each copy is
        # obtained by running *that exact trace* on a single-core machine —
        # normalized progress must compare a program against itself.
        full_workload = homogeneous_multiprogram_workload(
            benchmark,
            copies=max_copies,
            instructions=config.instructions,
            seed=config.seed,
        )
        solo_machine = default_machine_config(num_cores=1)
        solo_interval_cycles: List[float] = []
        solo_detailed_cycles: List[float] = []
        for copy_index in range(max_copies):
            solo_workload = Workload(
                name=f"{benchmark}#{copy_index} alone",
                traces=[full_workload.traces[copy_index]],
                core_assignment=[0],
                kind="single",
            )
            solo_interval_cycles.append(
                float(
                    run_simulator("interval", solo_machine, solo_workload, config)
                    .cores[0]
                    .cycles
                )
            )
            solo_detailed_cycles.append(
                float(
                    run_simulator("detailed", solo_machine, solo_workload, config)
                    .cores[0]
                    .cycles
                )
            )

        for copies in copy_counts:
            machine = default_machine_config(num_cores=copies)
            workload = Workload(
                name=f"{benchmark} x{copies}",
                traces=full_workload.traces[:copies],
                core_assignment=list(range(copies)),
                kind="multiprogram",
            )
            interval_stats = run_simulator("interval", machine, workload, config)
            detailed_stats = run_simulator("detailed", machine, workload, config)

            interval_multi = _per_program_cycles(interval_stats, copies)
            detailed_multi = _per_program_cycles(detailed_stats, copies)
            interval_single = solo_interval_cycles[:copies]
            detailed_single = solo_detailed_cycles[:copies]

            result.points.append(
                MultiProgramPoint(
                    benchmark=benchmark,
                    copies=copies,
                    interval_stp=system_throughput(interval_single, interval_multi),
                    detailed_stp=system_throughput(detailed_single, detailed_multi),
                    interval_antt=average_normalized_turnaround_time(
                        interval_single, interval_multi
                    ),
                    detailed_antt=average_normalized_turnaround_time(
                        detailed_single, detailed_multi
                    ),
                )
            )
    return result
