"""Figure 4 — step-by-step accuracy evaluation of the interval model.

The paper isolates the individual components of interval simulation by
idealizing everything else (Section 5.1):

* (a) **Effective dispatch rate** — perfect branch predictor, I-cache/I-TLB
  and L2; only the L1 D-cache is non-perfect.
* (b) **I-cache/TLB** — only the instruction cache and I-TLB are non-perfect.
* (c) **Branch prediction** — all caches perfect, only the branch predictor
  is non-perfect.
* (d) **L2 cache** — perfect branch predictor and instruction side; the L1
  D-cache and L2 are non-perfect.

Each sub-experiment compares the IPC estimated by interval simulation against
the detailed reference for every SPEC CPU2000 stand-in benchmark, reporting
the per-benchmark IPC pair and the average error (the paper reports 1.8%,
1.8%, 3.8% and 4.6% for the four sub-experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..common.config import PerfectStructures, default_machine_config
from ..common.metrics import ErrorSummary, summarize_errors
from ..trace.profiles import spec_benchmark_names
from ..trace.workloads import single_threaded_workload
from .runner import ComparisonResult, ExperimentConfig, compare_simulators, render_table

__all__ = ["SUB_EXPERIMENTS", "Figure4Result", "run_figure4", "run_sub_experiment"]


#: The four idealization settings of Figure 4, in the paper's order.
SUB_EXPERIMENTS: Dict[str, PerfectStructures] = {
    "dispatch_rate": PerfectStructures.dispatch_rate_study(),
    "icache": PerfectStructures.icache_study(),
    "branch": PerfectStructures.branch_study(),
    "l2": PerfectStructures.l2_study(),
}


@dataclass
class Figure4Result:
    """Results of one or more Figure-4 sub-experiments."""

    sub_experiments: Dict[str, List[ComparisonResult]] = field(default_factory=dict)

    def error_summary(self, sub_experiment: str) -> ErrorSummary:
        """Average/maximum IPC error of one sub-experiment."""
        results = self.sub_experiments[sub_experiment]
        estimates = {r.name: r.interval_ipc for r in results}
        references = {r.name: r.detailed_ipc for r in results}
        return summarize_errors(estimates, references)

    def render(self) -> str:
        """Plain-text rendering of every sub-experiment (paper-style rows)."""
        blocks = []
        for name, results in self.sub_experiments.items():
            rows = [
                (r.name, r.detailed_ipc, r.interval_ipc, r.ipc_error_percent)
                for r in results
            ]
            summary = self.error_summary(name)
            table = render_table(
                ["benchmark", "detailed IPC", "interval IPC", "error %"],
                rows,
                title=f"Figure 4({name}): {summary}",
            )
            blocks.append(table)
        return "\n\n".join(blocks)


def run_sub_experiment(
    name: str, config: ExperimentConfig | None = None
) -> List[ComparisonResult]:
    """Run one Figure-4 sub-experiment across the benchmark list."""
    if name not in SUB_EXPERIMENTS:
        raise KeyError(f"unknown sub-experiment {name!r}; known: {list(SUB_EXPERIMENTS)}")
    config = config or ExperimentConfig()
    machine = default_machine_config(num_cores=1).with_perfect(SUB_EXPERIMENTS[name])
    results = []
    for benchmark in config.select(spec_benchmark_names()):
        workload = single_threaded_workload(
            benchmark, instructions=config.instructions, seed=config.seed
        )
        results.append(
            compare_simulators(machine, workload, config, label=f"fig4-{name}")
        )
    return results


def run_figure4(
    config: ExperimentConfig | None = None,
    sub_experiments: List[str] | None = None,
) -> Figure4Result:
    """Run the Figure-4 study (all four sub-experiments by default)."""
    config = config or ExperimentConfig()
    names = sub_experiments or list(SUB_EXPERIMENTS)
    result = Figure4Result()
    for name in names:
        result.sub_experiments[name] = run_sub_experiment(name, config)
    return result
