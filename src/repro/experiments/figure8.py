"""Figure 8 — performance-trend case study: 3D-stacked DRAM trade-off.

The paper's case study compares two processor architectures on the PARSEC
benchmarks (§5.4):

* a **dual-core** processor with a 4 MB L2 cache and external DRAM
  (150-cycle latency) behind a 16-byte memory bus; and
* a **quad-core** processor with *no* L2 cache and 3D-stacked DRAM
  (125-cycle latency) behind a 128-byte memory bus.

The point of the study is not absolute accuracy but whether interval
simulation leads to the *same design decision* as detailed simulation for
each benchmark: compute/bandwidth-hungry benchmarks (bodytrack, fluidanimate,
swaptions) prefer the quad-core + 3D-DRAM design, while cache-sensitive ones
(canneal, vips, x264) prefer the dual-core with the large L2.

This driver runs both architectures under both simulators and reports, per
benchmark, the normalized execution times and whether the two simulators
agree on which architecture wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..common.config import dualcore_l2_config, quadcore_3d_stacked_config
from ..common.metrics import percentage_error
from ..trace.profiles import parsec_benchmark_names
from ..trace.workloads import multithreaded_workload
from .runner import ExperimentConfig, render_table, run_simulator

__all__ = ["CaseStudyPoint", "Figure8Result", "run_figure8"]


@dataclass
class CaseStudyPoint:
    """Results of one benchmark under both architectures and both simulators."""

    benchmark: str
    detailed_dualcore_cycles: int
    detailed_quadcore_cycles: int
    interval_dualcore_cycles: int
    interval_quadcore_cycles: int

    @property
    def detailed_quadcore_normalized(self) -> float:
        """Quad-core execution time normalized to detailed dual-core."""
        return self.detailed_quadcore_cycles / self.detailed_dualcore_cycles

    @property
    def interval_dualcore_normalized(self) -> float:
        """Interval dual-core execution time normalized to detailed dual-core."""
        return self.interval_dualcore_cycles / self.detailed_dualcore_cycles

    @property
    def interval_quadcore_normalized(self) -> float:
        """Interval quad-core execution time normalized to detailed dual-core."""
        return self.interval_quadcore_cycles / self.detailed_dualcore_cycles

    @property
    def detailed_prefers_quadcore(self) -> bool:
        """Design decision according to detailed simulation."""
        return self.detailed_quadcore_cycles < self.detailed_dualcore_cycles

    @property
    def interval_prefers_quadcore(self) -> bool:
        """Design decision according to interval simulation."""
        return self.interval_quadcore_cycles < self.interval_dualcore_cycles

    @property
    def decisions_agree(self) -> bool:
        """``True`` when both simulators pick the same architecture."""
        return self.detailed_prefers_quadcore == self.interval_prefers_quadcore


@dataclass
class Figure8Result:
    """All benchmarks of the 3D-stacking case study."""

    points: List[CaseStudyPoint] = field(default_factory=list)

    @property
    def agreement_rate(self) -> float:
        """Fraction of benchmarks where both simulators agree on the winner."""
        if not self.points:
            return 0.0
        return sum(1 for p in self.points if p.decisions_agree) / len(self.points)

    def render(self) -> str:
        """Plain-text rendering of the case-study outcome per benchmark."""
        rows = []
        for p in self.points:
            rows.append(
                (
                    p.benchmark,
                    1.0,
                    p.detailed_quadcore_normalized,
                    p.interval_dualcore_normalized,
                    p.interval_quadcore_normalized,
                    "4c+3D" if p.detailed_prefers_quadcore else "2c+L2",
                    "4c+3D" if p.interval_prefers_quadcore else "2c+L2",
                    "yes" if p.decisions_agree else "NO",
                )
            )
        title = (
            "Figure 8 (2 cores + L2 vs 4 cores + 3D-stacked DRAM): "
            f"design decisions agree for {self.agreement_rate * 100:.0f}% of benchmarks"
        )
        return render_table(
            [
                "benchmark",
                "det 2c+L2",
                "det 4c+3D",
                "int 2c+L2",
                "int 4c+3D",
                "det winner",
                "int winner",
                "agree",
            ],
            rows,
            title=title,
        )


def run_figure8(config: ExperimentConfig | None = None) -> Figure8Result:
    """Run the Figure-8 3D-stacking case study."""
    config = config or ExperimentConfig()
    dualcore = dualcore_l2_config()
    quadcore = quadcore_3d_stacked_config()
    result = Figure8Result()
    for benchmark in config.select(parsec_benchmark_names()):
        dual_workload = multithreaded_workload(
            benchmark,
            num_threads=dualcore.num_cores,
            total_instructions=config.instructions,
            seed=config.seed,
        )
        quad_workload = multithreaded_workload(
            benchmark,
            num_threads=quadcore.num_cores,
            total_instructions=config.instructions,
            seed=config.seed,
        )
        detailed_dual = run_simulator("detailed", dualcore, dual_workload, config)
        detailed_quad = run_simulator("detailed", quadcore, quad_workload, config)
        interval_dual = run_simulator("interval", dualcore, dual_workload, config)
        interval_quad = run_simulator("interval", quadcore, quad_workload, config)
        result.points.append(
            CaseStudyPoint(
                benchmark=benchmark,
                detailed_dualcore_cycles=detailed_dual.total_cycles,
                detailed_quadcore_cycles=detailed_quad.total_cycles,
                interval_dualcore_cycles=interval_dual.total_cycles,
                interval_quadcore_cycles=interval_quad.total_cycles,
            )
        )
    return result
