"""Ablation studies of the interval model's design choices.

The paper lists its modeling contributions explicitly (Section 1):

* (i) modeling of overlapping miss events underneath long-latency loads
  (second-order effects);
* (iii) the 'old window approach' for estimating the branch resolution time,
  window drain time and effective dispatch rate online.

These ablations quantify what each mechanism buys: the interval simulator is
run with the mechanism enabled and disabled, and the resulting IPC error
against the detailed reference is compared.  Disabling the old window falls
back to dispatching at the designed width with a zero branch-resolution
estimate (what a naive simulator would do); disabling overlap modeling
charges every long-latency load in full even when it would be hidden under
an earlier miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..common.config import default_machine_config
from ..common.metrics import percentage_error
from ..trace.profiles import spec_benchmark_names
from ..trace.workloads import single_threaded_workload
from .runner import ExperimentConfig, render_table, run_simulator

__all__ = ["AblationPoint", "AblationResult", "run_old_window_ablation", "run_overlap_ablation"]


#: Benchmarks with significant memory-level parallelism — the overlap
#: mechanism matters most for these.
MEMORY_INTENSIVE_BENCHMARKS: Sequence[str] = (
    "mcf",
    "art",
    "swim",
    "equake",
    "lucas",
    "facerec",
    "mgrid",
    "applu",
)


@dataclass
class AblationPoint:
    """IPC of the full and ablated interval model versus detailed, per benchmark."""

    benchmark: str
    detailed_ipc: float
    full_ipc: float
    ablated_ipc: float

    @property
    def full_error_percent(self) -> float:
        """Absolute IPC error of the full interval model."""
        return abs(percentage_error(self.full_ipc, self.detailed_ipc))

    @property
    def ablated_error_percent(self) -> float:
        """Absolute IPC error of the ablated interval model."""
        return abs(percentage_error(self.ablated_ipc, self.detailed_ipc))

    @property
    def error_increase_percent(self) -> float:
        """How much the error grows when the mechanism is disabled."""
        return self.ablated_error_percent - self.full_error_percent


@dataclass
class AblationResult:
    """All points of one ablation study."""

    name: str
    points: List[AblationPoint] = field(default_factory=list)

    @property
    def average_full_error(self) -> float:
        """Mean absolute error of the full model."""
        return sum(p.full_error_percent for p in self.points) / len(self.points)

    @property
    def average_ablated_error(self) -> float:
        """Mean absolute error of the ablated model."""
        return sum(p.ablated_error_percent for p in self.points) / len(self.points)

    def render(self) -> str:
        """Plain-text rendering of the per-benchmark error comparison."""
        rows = [
            (
                p.benchmark,
                p.detailed_ipc,
                p.full_ipc,
                p.ablated_ipc,
                p.full_error_percent,
                p.ablated_error_percent,
            )
            for p in self.points
        ]
        title = (
            f"Ablation: {self.name} — avg error {self.average_full_error:.1f}% (full) vs "
            f"{self.average_ablated_error:.1f}% (ablated)"
        )
        return render_table(
            ["benchmark", "detailed IPC", "full IPC", "ablated IPC", "full err %", "ablated err %"],
            rows,
            title=title,
        )


def _run_ablation(
    name: str,
    benchmarks: Sequence[str],
    config: ExperimentConfig,
    use_old_window: bool,
    model_overlap: bool,
) -> AblationResult:
    """Shared driver: full model vs one ablated configuration."""
    machine = default_machine_config(num_cores=1)
    result = AblationResult(name=name)
    for benchmark in benchmarks:
        workload = single_threaded_workload(
            benchmark, instructions=config.instructions, seed=config.seed
        )
        detailed_stats = run_simulator("detailed", machine, workload, config)
        full_stats = run_simulator("interval", machine, workload, config)
        ablated_stats = run_simulator(
            "interval",
            machine,
            workload,
            config,
            use_old_window=use_old_window,
            model_overlap=model_overlap,
        )
        result.points.append(
            AblationPoint(
                benchmark=benchmark,
                detailed_ipc=detailed_stats.aggregate_ipc,
                full_ipc=full_stats.aggregate_ipc,
                ablated_ipc=ablated_stats.aggregate_ipc,
            )
        )
    return result


def run_old_window_ablation(config: ExperimentConfig | None = None) -> AblationResult:
    """Disable the old-window estimates (fixed dispatch rate, no resolution time)."""
    config = config or ExperimentConfig()
    benchmarks = config.select(spec_benchmark_names())
    return _run_ablation(
        "old window (dispatch rate / branch resolution / drain time estimation)",
        benchmarks,
        config,
        use_old_window=False,
        model_overlap=True,
    )


def run_overlap_ablation(config: ExperimentConfig | None = None) -> AblationResult:
    """Disable second-order overlap modeling underneath long-latency loads."""
    config = config or ExperimentConfig()
    # Restrict to memory-intensive benchmarks; a user-supplied subset further
    # narrows (rather than replaces) that list.
    benchmarks = [
        name
        for name in spec_benchmark_names()
        if name in MEMORY_INTENSIVE_BENCHMARKS
        and (config.benchmarks is None or name in set(config.benchmarks))
    ]
    if not benchmarks:
        benchmarks = list(MEMORY_INTENSIVE_BENCHMARKS)
    return _run_ablation(
        "overlap of miss events underneath long-latency loads",
        benchmarks,
        config,
        use_old_window=True,
        model_overlap=False,
    )
