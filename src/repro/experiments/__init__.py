"""Experiment harness: one driver per table/figure of the paper's evaluation.

Every driver accepts an :class:`~repro.experiments.runner.ExperimentConfig`
so the same code can run a scaled-down version (used by the test-suite and
the pytest-benchmark targets) or a larger, more faithful budget (used for
EXPERIMENTS.md).  The mapping between drivers and paper artifacts is listed
in DESIGN.md §4.
"""

from .ablation import (
    AblationPoint,
    AblationResult,
    run_old_window_ablation,
    run_overlap_ablation,
)
from .figure4 import SUB_EXPERIMENTS, Figure4Result, run_figure4, run_sub_experiment
from .figure5 import Figure5Result, run_figure5
from .figure6 import Figure6Result, MultiProgramPoint, run_figure6
from .figure7 import Figure7Result, ScalingPoint, run_figure7
from .figure8 import CaseStudyPoint, Figure8Result, run_figure8
from .presets import PRESET_NAMES, QUICK_PARSEC, QUICK_SPEC, build_preset_configs
from .runner import (
    ComparisonResult,
    ExperimentConfig,
    compare_simulators,
    render_table,
    run_detailed,
    run_interval,
    run_simulator,
)
from .speedup import (
    SpeedupPoint,
    SpeedupResult,
    run_figure10_parsec_speedup,
    run_figure9_spec_speedup,
)

__all__ = [
    "AblationPoint",
    "AblationResult",
    "run_old_window_ablation",
    "run_overlap_ablation",
    "SUB_EXPERIMENTS",
    "Figure4Result",
    "run_figure4",
    "run_sub_experiment",
    "Figure5Result",
    "run_figure5",
    "Figure6Result",
    "MultiProgramPoint",
    "run_figure6",
    "Figure7Result",
    "ScalingPoint",
    "run_figure7",
    "CaseStudyPoint",
    "Figure8Result",
    "run_figure8",
    "ComparisonResult",
    "ExperimentConfig",
    "compare_simulators",
    "render_table",
    "run_detailed",
    "run_interval",
    "run_simulator",
    "PRESET_NAMES",
    "QUICK_PARSEC",
    "QUICK_SPEC",
    "build_preset_configs",
    "SpeedupPoint",
    "SpeedupResult",
    "run_figure10_parsec_speedup",
    "run_figure9_spec_speedup",
]
