"""Shared infrastructure for the per-figure experiment drivers.

Every experiment in the paper's evaluation compares interval simulation
against detailed cycle-level simulation on identical workloads.  This module
provides the plumbing those drivers share:

* :class:`ExperimentConfig` — the knobs every experiment accepts (instruction
  budget per thread, functional warm-up length, benchmark subset, seed), so
  tests and benchmark targets can run scaled-down versions of each figure
  while examples and EXPERIMENTS.md runs use larger budgets;
* :class:`ComparisonResult` — one workload simulated by both models;
* :func:`compare_simulators` — run both simulators on a workload;
* :func:`render_table` — plain-text table rendering used by the example
  scripts and the benchmark harness to print paper-style result rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..api.registry import create_simulator
from ..common.config import MachineConfig
from ..common.metrics import percentage_error
from ..common.stats import SimulationStats
from ..trace.stream import Workload

__all__ = [
    "ExperimentConfig",
    "ComparisonResult",
    "compare_simulators",
    "run_simulator",
    "run_interval",
    "run_detailed",
    "render_table",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Execution budget shared by all figure drivers.

    Attributes
    ----------
    instructions:
        Dynamic instructions per thread in the timed region plus warm-up
        (i.e. the trace length requested from the generator).
    warmup_instructions:
        Leading instructions per thread used for functional warming only.
    benchmarks:
        Optional subset of benchmark names; ``None`` runs the figure's full
        benchmark list.
    seed:
        Trace-generation seed.
    max_cycles:
        Safety bound passed to the simulators.
    """

    instructions: int = 60_000
    warmup_instructions: int = 30_000
    benchmarks: Optional[Sequence[str]] = None
    seed: int = 0
    max_cycles: Optional[int] = 200_000_000

    def select(self, full_list: Sequence[str]) -> List[str]:
        """Apply the benchmark subset filter to a figure's benchmark list."""
        if self.benchmarks is None:
            return list(full_list)
        wanted = set(self.benchmarks)
        unknown = wanted - set(full_list)
        if unknown:
            raise ValueError(f"unknown benchmarks for this figure: {sorted(unknown)}")
        return [name for name in full_list if name in wanted]


@dataclass
class ComparisonResult:
    """One workload simulated by the interval and detailed models."""

    name: str
    interval: SimulationStats
    detailed: SimulationStats
    label: str = ""

    @property
    def interval_ipc(self) -> float:
        """Aggregate IPC reported by interval simulation."""
        return self.interval.aggregate_ipc

    @property
    def detailed_ipc(self) -> float:
        """Aggregate IPC reported by detailed simulation."""
        return self.detailed.aggregate_ipc

    @property
    def ipc_error_percent(self) -> float:
        """Signed IPC error of interval relative to detailed (percent)."""
        return percentage_error(self.interval_ipc, self.detailed_ipc)

    @property
    def cycles_error_percent(self) -> float:
        """Signed execution-time error of interval relative to detailed."""
        return percentage_error(self.interval.total_cycles, self.detailed.total_cycles)

    @property
    def simulation_speedup(self) -> float:
        """Wall-clock speedup of interval over detailed simulation."""
        if self.interval.wall_clock_seconds <= 0:
            return 0.0
        return self.detailed.wall_clock_seconds / self.interval.wall_clock_seconds


def run_simulator(
    name: str,
    machine: MachineConfig,
    workload: Workload,
    config: ExperimentConfig,
    **options: object,
) -> SimulationStats:
    """Run any registered simulator on one workload with the experiment budget.

    ``name`` is resolved through the simulator registry
    (:mod:`repro.api.registry`); ``options`` are model-specific keyword
    options validated against the registered schema.
    """
    simulator = create_simulator(name, machine, **options)
    return simulator.run(
        workload,
        max_cycles=config.max_cycles,
        warmup_instructions=config.warmup_instructions,
    )


def run_interval(
    machine: MachineConfig,
    workload: Workload,
    config: ExperimentConfig,
    use_old_window: bool = True,
    model_overlap: bool = True,
) -> SimulationStats:
    """Backwards-compatible wrapper for ``run_simulator("interval", ...)``."""
    return run_simulator(
        "interval",
        machine,
        workload,
        config,
        use_old_window=use_old_window,
        model_overlap=model_overlap,
    )


def run_detailed(
    machine: MachineConfig, workload: Workload, config: ExperimentConfig
) -> SimulationStats:
    """Backwards-compatible wrapper for ``run_simulator("detailed", ...)``."""
    return run_simulator("detailed", machine, workload, config)


def compare_simulators(
    machine: MachineConfig,
    workload: Workload,
    config: ExperimentConfig,
    label: str = "",
) -> ComparisonResult:
    """Run both simulators on ``workload`` and package the comparison."""
    interval_stats = run_simulator("interval", machine, workload, config)
    detailed_stats = run_simulator("detailed", machine, workload, config)
    return ComparisonResult(
        name=workload.name,
        interval=interval_stats,
        detailed=detailed_stats,
        label=label,
    )


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render a plain-text table (used by examples and benchmark output)."""
    materialized: List[List[str]] = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    """Format one table cell: floats get three decimals, the rest ``str``."""
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
