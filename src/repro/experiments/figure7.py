"""Figure 7 — multi-threaded PARSEC workloads: scaling with core count.

The paper runs each PARSEC benchmark on 1, 2, 4 and 8 cores (full-system,
including OS code) and plots execution time normalized to detailed
single-core simulation.  The key observations it makes:

* the average interval-vs-detailed error is 4.6% with a maximum of 11%
  (fluidanimate);
* the *trend* with core count is captured accurately, including benchmarks
  whose performance does not scale (vips, due to load imbalance and poor
  synchronization behaviour).

This driver reproduces the experiment: for each benchmark and core count it
generates a multi-threaded workload (constant total work, one thread per
core, with barriers/locks/sharing from the profile) and reports the
normalized execution time under both simulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..common.config import default_machine_config
from ..common.metrics import percentage_error
from ..trace.profiles import parsec_benchmark_names
from ..trace.workloads import multithreaded_workload
from .runner import ExperimentConfig, render_table, run_simulator

__all__ = ["ScalingPoint", "Figure7Result", "run_figure7", "DEFAULT_CORE_COUNTS"]

#: Core counts evaluated in Figure 7.
DEFAULT_CORE_COUNTS: Sequence[int] = (1, 2, 4, 8)


@dataclass
class ScalingPoint:
    """One (benchmark, core-count) point of the PARSEC scaling study."""

    benchmark: str
    cores: int
    interval_cycles: int
    detailed_cycles: int
    interval_normalized: float
    detailed_normalized: float

    @property
    def error_percent(self) -> float:
        """Signed execution-time error of interval simulation versus detailed."""
        return percentage_error(self.interval_cycles, self.detailed_cycles)


@dataclass
class Figure7Result:
    """All points of the PARSEC scaling study."""

    points: List[ScalingPoint] = field(default_factory=list)

    @property
    def average_error(self) -> float:
        """Mean absolute execution-time error across all points."""
        return sum(abs(p.error_percent) for p in self.points) / len(self.points)

    @property
    def maximum_error(self) -> float:
        """Maximum absolute execution-time error across all points."""
        return max(abs(p.error_percent) for p in self.points)

    def for_benchmark(self, benchmark: str) -> List[ScalingPoint]:
        """Points of one benchmark, ordered by core count."""
        return sorted(
            (p for p in self.points if p.benchmark == benchmark),
            key=lambda p: p.cores,
        )

    def render(self) -> str:
        """Plain-text rendering of the normalized execution times."""
        rows = [
            (
                f"{p.benchmark} ({p.cores} cores)",
                p.detailed_normalized,
                p.interval_normalized,
                p.error_percent,
            )
            for p in self.points
        ]
        title = (
            "Figure 7 (PARSEC scaling): "
            f"avg error {self.average_error:.1f}%, max {self.maximum_error:.1f}%"
        )
        return render_table(
            ["workload", "detailed (norm.)", "interval (norm.)", "error %"],
            rows,
            title=title,
        )


def run_figure7(
    config: ExperimentConfig | None = None,
    core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
) -> Figure7Result:
    """Run the Figure-7 PARSEC scaling study."""
    config = config or ExperimentConfig()
    result = Figure7Result()
    for benchmark in config.select(parsec_benchmark_names()):
        baseline_detailed_cycles: float | None = None
        for cores in core_counts:
            machine = default_machine_config(num_cores=cores)
            workload = multithreaded_workload(
                benchmark,
                num_threads=cores,
                total_instructions=config.instructions,
                seed=config.seed,
            )
            interval_stats = run_simulator("interval", machine, workload, config)
            detailed_stats = run_simulator("detailed", machine, workload, config)
            if baseline_detailed_cycles is None:
                # Normalization reference: detailed single-core execution time.
                baseline_detailed_cycles = float(detailed_stats.total_cycles)
            result.points.append(
                ScalingPoint(
                    benchmark=benchmark,
                    cores=cores,
                    interval_cycles=interval_stats.total_cycles,
                    detailed_cycles=detailed_stats.total_cycles,
                    interval_normalized=interval_stats.total_cycles
                    / baseline_detailed_cycles,
                    detailed_normalized=detailed_stats.total_cycles
                    / baseline_detailed_cycles,
                )
            )
    return result
