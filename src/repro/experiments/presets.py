"""Budget presets shared by ``python -m repro figure`` and the examples.

Each preset maps every paper artifact (Figures 4–10 plus the ablations) to
an :class:`~repro.experiments.runner.ExperimentConfig`: ``quick`` runs small
budgets and benchmark subsets in a couple of minutes, ``medium`` covers the
full benchmark lists with moderate budgets, and ``full`` uses the larger
budgets closest to the shapes reported in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .runner import ExperimentConfig

__all__ = ["PRESET_NAMES", "QUICK_SPEC", "QUICK_PARSEC", "build_preset_configs"]

#: Available preset names, fastest first.
PRESET_NAMES: Sequence[str] = ("quick", "medium", "full")

#: A compact but diverse benchmark subset used by the --quick preset and for
#: the expensive many-core speedup sweeps.
QUICK_SPEC: List[str] = ["gcc", "mcf", "twolf", "art", "swim", "eon", "vpr", "equake"]
QUICK_PARSEC: List[str] = ["blackscholes", "canneal", "fluidanimate", "vips", "swaptions"]


def build_preset_configs(preset: str) -> Dict[str, ExperimentConfig]:
    """Budget presets for every figure driver, keyed by artifact name."""
    if preset == "quick":
        return {
            "fig4": ExperimentConfig(instructions=20_000, warmup_instructions=10_000, benchmarks=QUICK_SPEC),
            "fig5": ExperimentConfig(instructions=20_000, warmup_instructions=10_000, benchmarks=QUICK_SPEC),
            "fig6": ExperimentConfig(instructions=16_000, warmup_instructions=8_000, benchmarks=["gcc", "mcf"]),
            "fig7": ExperimentConfig(instructions=24_000, warmup_instructions=12_000, benchmarks=QUICK_PARSEC),
            "fig8": ExperimentConfig(instructions=24_000, warmup_instructions=12_000, benchmarks=QUICK_PARSEC),
            "fig9": ExperimentConfig(instructions=12_000, warmup_instructions=6_000, benchmarks=["gcc", "mcf", "swim"]),
            "fig10": ExperimentConfig(instructions=16_000, warmup_instructions=8_000, benchmarks=["blackscholes", "vips"]),
            "ablation": ExperimentConfig(instructions=20_000, warmup_instructions=10_000, benchmarks=QUICK_SPEC),
        }
    if preset == "medium":
        return {
            "fig4": ExperimentConfig(instructions=40_000, warmup_instructions=20_000),
            "fig5": ExperimentConfig(instructions=60_000, warmup_instructions=30_000),
            "fig6": ExperimentConfig(instructions=40_000, warmup_instructions=20_000),
            "fig7": ExperimentConfig(instructions=60_000, warmup_instructions=30_000),
            "fig8": ExperimentConfig(instructions=48_000, warmup_instructions=24_000),
            "fig9": ExperimentConfig(instructions=24_000, warmup_instructions=12_000, benchmarks=QUICK_SPEC),
            "fig10": ExperimentConfig(instructions=36_000, warmup_instructions=18_000),
            "ablation": ExperimentConfig(instructions=40_000, warmup_instructions=20_000),
        }
    if preset == "full":
        return {
            "fig4": ExperimentConfig(instructions=80_000, warmup_instructions=40_000),
            "fig5": ExperimentConfig(instructions=120_000, warmup_instructions=60_000),
            "fig6": ExperimentConfig(instructions=80_000, warmup_instructions=40_000),
            "fig7": ExperimentConfig(instructions=120_000, warmup_instructions=60_000),
            "fig8": ExperimentConfig(instructions=96_000, warmup_instructions=48_000),
            "fig9": ExperimentConfig(instructions=40_000, warmup_instructions=20_000),
            "fig10": ExperimentConfig(instructions=64_000, warmup_instructions=32_000),
            "ablation": ExperimentConfig(instructions=80_000, warmup_instructions=40_000),
        }
    raise ValueError(f"unknown preset {preset!r}; known: {list(PRESET_NAMES)}")
