"""Figure 5 — single-threaded accuracy with every structure non-perfect.

"Putting everything together, the average error for the single-threaded
benchmarks equals 5.9%; the maximum is bounded to 15.5%." (paper, §5.1)

This driver runs every SPEC CPU2000 stand-in benchmark on the Table-1
single-core machine, with the branch predictor and the full memory hierarchy
simulated, and compares the IPC estimated by interval simulation against the
detailed reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..common.config import default_machine_config
from ..common.metrics import ErrorSummary, summarize_errors
from ..trace.profiles import spec_benchmark_names
from ..trace.workloads import single_threaded_workload
from .runner import ComparisonResult, ExperimentConfig, compare_simulators, render_table

__all__ = ["Figure5Result", "run_figure5"]


@dataclass
class Figure5Result:
    """Per-benchmark IPC comparison for the full single-threaded study."""

    results: List[ComparisonResult] = field(default_factory=list)

    @property
    def error_summary(self) -> ErrorSummary:
        """Average and maximum IPC error across the benchmark set."""
        estimates = {r.name: r.interval_ipc for r in self.results}
        references = {r.name: r.detailed_ipc for r in self.results}
        return summarize_errors(estimates, references)

    def render(self) -> str:
        """Plain-text rendering of the per-benchmark IPC comparison."""
        rows = [
            (r.name, r.detailed_ipc, r.interval_ipc, r.ipc_error_percent)
            for r in self.results
        ]
        return render_table(
            ["benchmark", "detailed IPC", "interval IPC", "error %"],
            rows,
            title=f"Figure 5 (single-threaded SPEC CPU): {self.error_summary}",
        )


def run_figure5(config: ExperimentConfig | None = None) -> Figure5Result:
    """Run the Figure-5 single-threaded accuracy study."""
    config = config or ExperimentConfig()
    machine = default_machine_config(num_cores=1)
    result = Figure5Result()
    for benchmark in config.select(spec_benchmark_names()):
        workload = single_threaded_workload(
            benchmark, instructions=config.instructions, seed=config.seed
        )
        result.results.append(
            compare_simulators(machine, workload, config, label="fig5")
        )
    return result
